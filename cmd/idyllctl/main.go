// Command idyllctl is the CLI client for an idylld daemon, built on the
// typed client in internal/service.
//
//	idyllctl -server http://127.0.0.1:8080 submit -app PR -scheme idyll
//	idyllctl submit -figure fig11 -cus 4 -accesses 200      # queue a figure
//	idyllctl status j-000001                                # one-shot status
//	idyllctl wait j-000001                                  # stream progress, print result
//	idyllctl submit -wait -app PR -scheme idyll             # submit + wait
//	idyllctl figure fig11 -cus 4 -accesses 200              # synchronous figure
//	idyllctl metrics                                        # daemon counters
//	idyllctl fleet                                          # fleet membership
//	idyllctl -tenant alice submit -figure fig11             # tagged submission
//
// The server address comes from -server or the IDYLLD_ADDR environment
// variable (default http://127.0.0.1:8080). -tenant (or IDYLL_TENANT) tags
// every request with X-Idyll-Tenant for fair-share scheduling and
// per-tenant accounting; pointing -server at a fleet coordinator makes
// every command transparently fleet-wide.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"idyll/internal/experiment"
	"idyll/internal/fleet"
	"idyll/internal/service"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  idyllctl [-server URL] [-tenant NAME] submit [-wait] (-figure ID | -app ABBR -scheme NAME) [scale flags]
  idyllctl [-server URL] status JOB_ID
  idyllctl [-server URL] wait JOB_ID
  idyllctl [-server URL] [-tenant NAME] figure ID [scale flags]
  idyllctl [-server URL] metrics
  idyllctl [-server URL] fleet

scale flags: -cus N -accesses N -seed N -threshold N -apps A,B -timeout DURATION`)
	os.Exit(2)
}

func main() {
	server := flag.String("server", "", "daemon base URL (default $IDYLLD_ADDR or http://127.0.0.1:8080)")
	tenant := flag.String("tenant", "", "tenant name sent as X-Idyll-Tenant (default $IDYLL_TENANT)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}

	base := *server
	if base == "" {
		base = os.Getenv("IDYLLD_ADDR")
	}
	if base == "" {
		base = "http://127.0.0.1:8080"
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	ten := *tenant
	if ten == "" {
		ten = os.Getenv("IDYLL_TENANT")
	}
	var copts []service.ClientOption
	if ten != "" {
		copts = append(copts, service.WithTenant(ten))
	}
	c := service.NewClient(base, copts...)

	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	args := flag.Args()
	switch args[0] {
	case "submit":
		cmdSubmit(ctx, c, args[1:])
	case "status":
		cmdStatus(ctx, c, args[1:])
	case "wait":
		cmdWait(ctx, c, args[1:])
	case "figure":
		cmdFigure(ctx, c, args[1:])
	case "metrics":
		cmdMetrics(ctx, c)
	case "fleet":
		cmdFleet(ctx, c)
	default:
		fmt.Fprintf(os.Stderr, "idyllctl: unknown command %q\n", args[0])
		usage()
	}
}

// scaleFlags registers the shared experiment-scale flags on fs and returns
// a builder for the options JSON.
func scaleFlags(fs *flag.FlagSet) func() ([]byte, error) {
	cus := fs.Int("cus", 0, "CUs per GPU (0 = daemon default)")
	accesses := fs.Int("accesses", 0, "accesses per CU")
	seed := fs.Uint64("seed", 0, "workload seed")
	threshold := fs.Int("threshold", 0, "access-counter threshold")
	warmup := fs.Int("warmup", 0, "warmup accesses per CU before the drain barrier (semantic: part of the spec hash; lets the daemon share warmup checkpoints)")
	apps := fs.String("apps", "", "comma-separated app subset")
	return func() ([]byte, error) {
		o := experiment.Options{
			CUsPerGPU:           *cus,
			AccessesPerCU:       *accesses,
			Seed:                *seed,
			CounterThreshold:    *threshold,
			WarmupAccessesPerCU: *warmup,
		}
		if *apps != "" {
			for _, a := range strings.Split(*apps, ",") {
				if a = strings.TrimSpace(a); a != "" {
					o.Apps = append(o.Apps, a)
				}
			}
		}
		return o.CanonicalJSON()
	}
}

func cmdSubmit(ctx context.Context, c *service.Client, args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	figure := fs.String("figure", "", "submit a whole figure/table by registry ID")
	app := fs.String("app", "", "application abbreviation (cell jobs)")
	scheme := fs.String("scheme", "", "scheme name (cell jobs)")
	timeout := fs.Duration("timeout", 0, "per-job run-time cap (0 = daemon default)")
	wait := fs.Bool("wait", false, "wait for completion and print the result")
	opts := scaleFlags(fs)
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "idyllctl: unexpected argument %q\n", fs.Arg(0))
		usage()
	}

	spec := service.JobSpec{TimeoutMS: timeout.Milliseconds()}
	switch {
	case *figure != "" && *app == "" && *scheme == "":
		spec.Kind, spec.Figure = service.KindFigure, *figure
	case *figure == "" && *app != "" && *scheme != "":
		spec.Kind, spec.App, spec.Scheme = service.KindCell, *app, *scheme
	default:
		fmt.Fprintln(os.Stderr, "idyllctl: submit needs either -figure, or -app and -scheme")
		usage()
	}
	raw, err := opts()
	fatal(err)
	spec.Options = raw

	st, err := c.Submit(ctx, spec)
	fatal(err)
	describeSubmission(st)
	if !*wait || terminal(st.Status) {
		if terminal(st.Status) {
			printResult(st)
		}
		return
	}
	st, err = c.Wait(ctx, st.ID, progressPrinter())
	fatal(err)
	printResult(st)
}

func describeSubmission(st *service.JobStatus) {
	state := st.Status
	switch {
	case st.Cached:
		state += " (cache hit)"
	case st.Deduped:
		state += " (attached to identical in-flight job)"
	}
	fmt.Fprintf(os.Stderr, "job %s: %s  hash %s\n", st.ID, state, short(st.Hash))
}

func cmdStatus(ctx context.Context, c *service.Client, args []string) {
	if len(args) != 1 {
		usage()
	}
	st, err := c.Status(ctx, args[0])
	fatal(err)
	fmt.Printf("id:     %s\nstatus: %s\nhash:   %s\n", st.ID, st.Status, st.Hash)
	if st.Error != "" {
		fmt.Printf("error:  %s\n", st.Error)
	}
	if len(st.Result) > 0 {
		fmt.Printf("result: %d bytes (idyllctl wait %s to print)\n", len(st.Result), st.ID)
	}
}

func cmdWait(ctx context.Context, c *service.Client, args []string) {
	if len(args) != 1 {
		usage()
	}
	st, err := c.Wait(ctx, args[0], progressPrinter())
	fatal(err)
	printResult(st)
}

func cmdFigure(ctx context.Context, c *service.Client, args []string) {
	if len(args) < 1 || strings.HasPrefix(args[0], "-") {
		usage()
	}
	name := args[0]
	fs := flag.NewFlagSet("figure", flag.ExitOnError)
	opts := scaleFlags(fs)
	fs.Parse(args[1:])
	raw, err := opts()
	fatal(err)
	o, err := experiment.OptionsFromCanonicalJSON(raw)
	fatal(err)
	tab, err := c.Figure(ctx, name, o)
	fatal(err)
	fmt.Print(tab.Render())
}

func cmdMetrics(ctx context.Context, c *service.Client) {
	m, err := c.Metrics(ctx)
	fatal(err)
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%s %g\n", name, m[name])
	}
}

func cmdFleet(ctx context.Context, c *service.Client) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.Base()+"/v1/fleet/status", nil)
	fatal(err)
	resp, err := http.DefaultClient.Do(req)
	fatal(err)
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		fatal(fmt.Errorf("%s is not a fleet coordinator (no /v1/fleet/status)", c.Base()))
	}
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("fleet status: HTTP %d", resp.StatusCode))
	}
	var st fleet.StatusResponse
	fatal(json.NewDecoder(resp.Body).Decode(&st))

	fmt.Printf("protocol:    %s\n", st.Version)
	fmt.Printf("queue depth: %d\n", st.QueueDepth)
	fmt.Printf("copysets:    %d tracked\n", st.Copysets)
	fmt.Printf("workers:     %d\n", len(st.Workers))
	for _, w := range st.Workers {
		line := fmt.Sprintf("  %-12s %-9s %s", w.ID, w.State, w.URL)
		if w.Breaker != "" && w.Breaker != "closed" {
			line += fmt.Sprintf("  [breaker %s]", w.Breaker)
		}
		if w.Fails > 0 {
			line += fmt.Sprintf("  (%d consecutive probe failures)", w.Fails)
		}
		fmt.Println(line)
	}
}

// progressPrinter renders progress events as a single updating stderr line.
func progressPrinter() func(service.Event) {
	var last time.Time
	return func(ev service.Event) {
		switch ev.Type {
		case "progress":
			if time.Since(last) < 100*time.Millisecond && ev.Done < ev.Total {
				return
			}
			last = time.Now()
			fmt.Fprintf(os.Stderr, "\r%3d/%3d cells  %-32s", ev.Done, ev.Total, ev.Cell)
			if ev.Done == ev.Total {
				fmt.Fprintf(os.Stderr, "\r%-60s\r", "")
			}
		case "failed", "cancelled":
			fmt.Fprintf(os.Stderr, "\r%-60s\r", "")
		}
	}
}

func printResult(st *service.JobStatus) {
	switch st.Status {
	case service.StatusDone:
		fmt.Println(string(st.Result))
	case service.StatusFailed:
		fmt.Fprintf(os.Stderr, "idyllctl: job %s failed: %s\n", st.ID, st.Error)
		os.Exit(1)
	case service.StatusCancelled:
		fmt.Fprintf(os.Stderr, "idyllctl: job %s cancelled: %s\n", st.ID, st.Error)
		os.Exit(1)
	}
}

func terminal(status string) bool {
	return status == service.StatusDone || status == service.StatusFailed ||
		status == service.StatusCancelled
}

func short(hash string) string {
	if len(hash) > 12 {
		return hash[:12]
	}
	return hash
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "idyllctl:", err)
		os.Exit(1)
	}
}
