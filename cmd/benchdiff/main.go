// Command benchdiff compares two benchmark result sets and fails on
// regressions. It is the repo's self-contained stand-in for benchstat, so CI
// can gate on benchmark output without fetching external tools.
//
// Each input is either raw `go test -bench` output (any extension) or a JSON
// baseline previously written with -emit (extension .json). Within one input,
// repeated runs of the same benchmark (-count=N) collapse to the median, which
// is what makes the wall-clock comparison usable on shared machines.
//
// The comparison table ends with a geomean summary row over the ns/op ratios;
// -fail-over gates on it, which is the noise-robust wall-clock gate CI uses
// (one benchmark hitting scheduler noise cannot trip it, a regression across
// the set can). -min collapses to the per-benchmark minimum instead of the
// median, for recording baselines.
//
//	benchdiff old.txt new.txt                 # compare two bench runs
//	benchdiff -time -1 BENCH_PR7.json new.txt # allocs-only gate vs baseline
//	benchdiff -min -emit BENCH_PR7.json new.txt  # record a baseline, no compare
//	benchdiff -time -1 -fail-over 0.25 old new   # geomean-only wall-clock gate
//
// Exit status: 0 clean, 1 regression found, 2 usage/parse error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's collapsed (median) measurements. A metric absent
// from the run (e.g. B/op without -benchmem) is NaN-free: tracked via the has*
// flags so absent metrics are never compared.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`

	hasNs, hasBytes, hasAllocs bool
}

// Baseline is the JSON schema of a committed BENCH_*.json file.
type Baseline struct {
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	var (
		timeTol  = flag.Float64("time", 0.10, "ns/op regression threshold as a fraction; negative disables the time gate")
		allocTol = flag.Float64("allocs", 0.10, "allocs/op regression threshold as a fraction; negative disables")
		byteTol  = flag.Float64("bytes", -1, "B/op regression threshold as a fraction; negative disables (report-only)")
		failOver = flag.Float64("fail-over", -1, "geomean ns/op regression threshold as a fraction; negative disables. Gates on the summary row, so single-benchmark scheduler noise cannot trip it")
		useMin   = flag.Bool("min", false, "collapse repeated runs to the per-benchmark minimum instead of the median (the least-noise estimate; use when recording baselines)")
		emit     = flag.String("emit", "", "write NEW as a JSON baseline to this path")
		note     = flag.String("note", "", "note embedded in the emitted baseline (with -emit); empty keeps the default")
		require  = flag.Bool("require", false, "fail if a benchmark in OLD is missing from NEW")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] OLD NEW")
		fmt.Fprintln(os.Stderr, "       benchdiff -emit BASELINE.json NEW")
		fmt.Fprintln(os.Stderr, "  OLD, NEW: `go test -bench` output, or a .json baseline written with -emit")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *useMin {
		collapse = minimum
	}

	// Record-only mode: one input, written out as the new baseline.
	if *emit != "" && flag.NArg() == 1 {
		cur, err := load(flag.Arg(0))
		fatal(err)
		fatal(writeBaseline(*emit, cur, *note))
		fmt.Printf("wrote %s (%d benchmarks)\n", *emit, len(cur))
		return
	}
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	old, err := load(flag.Arg(0))
	fatal(err)
	cur, err := load(flag.Arg(1))
	fatal(err)

	if *emit != "" {
		fatal(writeBaseline(*emit, cur, *note))
		fmt.Printf("wrote %s (%d benchmarks)\n", *emit, len(cur))
	}

	regressions := report(old, cur, *timeTol, *byteTol, *allocTol, *failOver, *require)
	if regressions > 0 {
		fmt.Printf("\nFAIL: %d regression(s)\n", regressions)
		os.Exit(1)
	}
	fmt.Println("\nok: no regressions")
}

// report prints the benchstat-style comparison table plus a geomean summary
// row over the ns/op ratios and returns the number of threshold violations.
// failOver gates on the geomean: the per-benchmark time gate trips on one
// noisy benchmark, the geomean gate only on a regression broad or deep enough
// to move the whole tracked set — which is what a CI wall-clock gate on a
// shared runner must key on.
func report(old, cur map[string]Result, timeTol, byteTol, allocTol, failOver float64, require bool) int {
	names := make([]string, 0, len(old))
	for n := range old {
		names = append(names, n)
	}
	sort.Strings(names)

	w := 0
	for _, n := range names {
		if len(n) > w {
			w = len(n)
		}
	}
	fmt.Printf("%-*s  %22s  %22s  %22s\n", w, "benchmark",
		"ns/op (old→new)", "B/op (old→new)", "allocs/op (old→new)")

	regressions := 0
	logRatioSum, ratioCount := 0.0, 0
	for _, n := range names {
		o := old[n]
		c, ok := cur[n]
		if !ok {
			if require {
				fmt.Printf("%-*s  missing from NEW\n", w, n)
				regressions++
			}
			continue
		}
		if o.hasNs && c.hasNs && o.NsPerOp > 0 && c.NsPerOp > 0 {
			logRatioSum += math.Log(c.NsPerOp / o.NsPerOp)
			ratioCount++
		}
		var cols [3]string
		for i, m := range []struct {
			have bool
			o, c float64
			tol  float64
		}{
			{o.hasNs && c.hasNs, o.NsPerOp, c.NsPerOp, timeTol},
			{o.hasBytes && c.hasBytes, o.BytesPerOp, c.BytesPerOp, byteTol},
			{o.hasAllocs && c.hasAllocs, o.AllocsPerOp, c.AllocsPerOp, allocTol},
		} {
			if !m.have {
				cols[i] = "-"
				continue
			}
			mark := ""
			if exceeds(m.o, m.c, m.tol) {
				mark = "  REGRESSION"
				regressions++
			}
			cols[i] = fmt.Sprintf("%s→%s %s%s", trim(m.o), trim(m.c), delta(m.o, m.c), mark)
		}
		fmt.Printf("%-*s  %22s  %22s  %22s\n", w, n, cols[0], cols[1], cols[2])
	}
	if ratioCount > 0 {
		ratio := math.Exp(logRatioSum / float64(ratioCount))
		mark := ""
		if failOver >= 0 && ratio > 1+failOver {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Printf("%-*s  %22s%s\n", w, "geomean (ns/op)",
			fmt.Sprintf("×%.3f (%+.1f%%)", ratio, (ratio-1)*100), mark)
	}
	return regressions
}

// exceeds reports whether new regresses past old by more than tol. A zero
// baseline is special-cased: any growth from zero is a regression (the
// relative delta is infinite), which is exactly the guard the zero-alloc
// engine paths need.
func exceeds(old, cur, tol float64) bool {
	if tol < 0 {
		return false
	}
	if old == 0 {
		return cur > 0
	}
	return cur > old*(1+tol)
}

func delta(old, cur float64) string {
	if old == 0 {
		if cur == 0 {
			return "(=)"
		}
		return "(+inf)"
	}
	return fmt.Sprintf("(%+.1f%%)", (cur-old)/old*100)
}

func trim(v float64) string {
	if v == float64(int64(v)) && v < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 1, 64)
}

// load reads either a JSON baseline (.json) or raw `go test -bench` output.
func load(path string) (map[string]Result, error) {
	if strings.HasSuffix(path, ".json") {
		return loadBaseline(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseBench(f)
}

func loadBaseline(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]Result, len(b.Benchmarks))
	for name, r := range b.Benchmarks {
		// A committed baseline states all three metrics explicitly.
		r.hasNs, r.hasBytes, r.hasAllocs = true, true, true
		out[name] = r
	}
	return out, nil
}

func writeBaseline(path string, cur map[string]Result, note string) error {
	if note == "" {
		note = "benchmark baseline; compare with `go run ./cmd/benchdiff`, regenerate with scripts/bench.sh record"
	}
	b := Baseline{
		Note:       note,
		Benchmarks: cur,
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// sample accumulates the per-run values of one benchmark before the median
// collapse.
type sample struct{ ns, bytes, allocs []float64 }

// parseBench reads `go test -bench` output. Lines look like
//
//	BenchmarkEventEngine-64   31735113   38.31 ns/op   0 B/op   0 allocs/op
//
// possibly with extra custom metrics (ignored); everything that does not
// start with "Benchmark" is skipped.
func parseBench(f *os.File) (map[string]Result, error) {
	samples := map[string]*sample{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := normalize(fields[0])
		s := samples[name]
		if s == nil {
			s = &sample{}
			samples[name] = s
		}
		// fields[1] is the iteration count; the rest are (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value in %q: %w", sc.Text(), err)
			}
			switch fields[i+1] {
			case "ns/op":
				s.ns = append(s.ns, v)
			case "B/op":
				s.bytes = append(s.bytes, v)
			case "allocs/op":
				s.allocs = append(s.allocs, v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", f.Name())
	}
	out := make(map[string]Result, len(samples))
	for name, s := range samples {
		var r Result
		if r.hasNs = len(s.ns) > 0; r.hasNs {
			r.NsPerOp = collapse(s.ns)
		}
		if r.hasBytes = len(s.bytes) > 0; r.hasBytes {
			r.BytesPerOp = collapse(s.bytes)
		}
		if r.hasAllocs = len(s.allocs) > 0; r.hasAllocs {
			r.AllocsPerOp = collapse(s.allocs)
		}
		out[name] = r
	}
	return out, nil
}

// collapse reduces one benchmark's repeated-run samples to a single value:
// the median by default (robust comparison on shared machines), the minimum
// under -min (a baseline should record the least-interference run, since
// noise only ever adds time).
var collapse = median

func minimum(v []float64) float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// normalize strips the trailing -GOMAXPROCS suffix so runs from machines with
// different core counts compare by benchmark identity.
func normalize(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
}
