// Command idyllsim runs one (application × scheme) simulation and prints
// the collected statistics — the single-run entry point for exploring the
// simulator.
//
// Usage:
//
//	idyllsim -app PR -scheme idyll -gpus 4 -cus 16 -accesses 600
//	idyllsim -list
//
// Schemes: baseline, lazy, inpte, idyll, inmem, zero, first-touch,
// on-touch, replication, transfw, idyll+transfw.
package main

import (
	"flag"
	"fmt"
	"os"

	"idyll/internal/config"
	"idyll/internal/system"
	"idyll/internal/workload"
)

func main() {
	var (
		appName    = flag.String("app", "PR", "application abbreviation (see -list)")
		schemeName = flag.String("scheme", "idyll", "scheme to simulate")
		gpus       = flag.Int("gpus", 4, "number of GPUs")
		cus        = flag.Int("cus", 16, "compute units per GPU")
		accesses   = flag.Int("accesses", 600, "memory accesses per CU")
		threshold  = flag.Int("threshold", 2, "access-counter threshold (paper's 256 scaled, see EXPERIMENTS.md)")
		seed       = flag.Uint64("seed", 20231028, "workload seed")
		list       = flag.Bool("list", false, "list applications and exit")
		check      = flag.Bool("check", true, "enable the translation-coherence checker")
		verbose    = flag.Bool("v", false, "print extended statistics")
	)
	flag.Parse()

	if *list {
		fmt.Println("Table 3 applications:")
		for _, p := range workload.Apps() {
			fmt.Printf("  %s\n", p)
		}
		fmt.Println("DNN workloads (§7.6):")
		for _, p := range workload.DNNApps() {
			fmt.Printf("  %-4s %s\n", p.Abbr, p.Name)
		}
		return
	}

	app, err := workload.App(*appName)
	fatal(err)
	scheme, err := config.SchemeByName(*schemeName)
	fatal(err)

	m := config.Default()
	m.NumGPUs = *gpus
	m.CUsPerGPU = *cus
	m.AccessCounterThreshold = *threshold

	s, err := system.New(m, scheme)
	fatal(err)
	s.CheckTranslations = *check
	trace := workload.Generate(app, m.NumGPUs, m.CUsPerGPU, *accesses, *seed)
	st, err := s.Run(trace)
	fatal(err)

	fmt.Printf("app=%s scheme=%q gpus=%d cus=%d accesses/cu=%d\n",
		app.Abbr, scheme.Name, m.NumGPUs, m.CUsPerGPU, *accesses)
	fmt.Println(st.Summary())
	if *verbose {
		fmt.Printf("  L1 TLB hit rate: %.1f%%  L2 TLB hit rate: %.1f%%\n",
			pct(st.L1TLBHits, st.L1TLBLookups), pct(st.L2TLBHits, st.L2TLBLookups))
		fmt.Printf("  walker requests: demand=%d inval=%d update=%d (queue rejects %d)\n",
			st.WalkerDemand, st.WalkerInval, st.WalkerUpdate, st.WalkQueueRejects)
		fmt.Printf("  PWC hit rate: %.1f%%  MSHR merges: %d\n",
			pct(st.PWCHits, st.PWCLookups), st.MSHRMerges)
		fmt.Printf("  remote accesses: %d (%.1f%% of data accesses)\n",
			st.RemoteAccesses, pct(st.RemoteAccesses, st.RemoteAccesses+st.LocalAccesses))
		fmt.Printf("  migrations: %d (requests %d), mean wait %.0f cy, mean total %.0f cy\n",
			st.Migrations, st.MigrationRequests, st.MigrationWait.Mean(), st.MigrationTotal.Mean())
		fmt.Printf("  invalidations: recv=%d necessary=%d unnecessary=%d mean latency %.0f cy\n",
			st.InvalReceived, st.InvalNecessary, st.InvalUnnecessary, st.Inval.Mean())
		fmt.Printf("  demand-miss distribution: p50=%d p90=%d p99=%d max=%d cy\n",
			st.DemandMissHist.Percentile(50), st.DemandMissHist.Percentile(90),
			st.DemandMissHist.Percentile(99), st.DemandMissHist.Max())
		if st.IRMBInserts > 0 {
			fmt.Printf("  IRMB: inserts=%d merges=%d evictions=%d drains=%d lookup hits=%d writebacks=%d\n",
				st.IRMBInserts, st.IRMBMergeHits, st.IRMBEvictions, st.IRMBDrains,
				st.IRMBLookupHits, st.IRMBWritebacks)
		}
		if st.DirectoryTargeted > 0 {
			fmt.Printf("  directory: targeted=%d filtered=%d\n",
				st.DirectoryTargeted, st.DirectoryFiltered)
		}
		if st.PRTLookups > 0 {
			fmt.Printf("  Trans-FW PRT: lookups=%d hits=%d false positives=%d\n",
				st.PRTLookups, st.PRTHits, st.PRTFalsePositives)
		}
		if st.Replications > 0 {
			fmt.Printf("  replication: replicas=%d write collapses=%d\n",
				st.Replications, st.WriteCollapses)
		}
		fmt.Printf("  traffic: NVLink %d B, PCIe %d B\n", st.NVLinkBytes, st.PCIeBytes)
		fmt.Printf("  sharing: %.1f%% of accesses to multi-GPU pages over %d pages\n",
			st.Sharing().SharedAccessRatio()*100, st.Sharing().Pages())
		if *check {
			fmt.Printf("  stale-window accesses: %.4f%%\n", s.StaleWindowFraction()*100)
		}
	}
}

func pct(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den) * 100
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "idyllsim:", err)
		os.Exit(1)
	}
}
