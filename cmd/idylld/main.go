// Command idylld is the simulation-as-a-service daemon: it accepts
// simulation jobs over HTTP (single cells or whole registry figures), runs
// them on a bounded worker pool, and serves results from a content-addressed
// cache — duplicate submissions dedupe onto one execution and repeat
// queries answer in microseconds.
//
// Usage:
//
//	idylld                                  # listen on :8080
//	idylld -addr 127.0.0.1:0 -addr-file a   # random port, written to file
//	idylld -cache-dir /var/cache/idyll      # persist results across restarts
//
// Fleet mode shards the service across machines (see docs/API.md):
//
//	idylld -worker -fleet-id w1 -addr :8081          # one fleet worker
//	idylld -worker -fleet-id w2 -addr :8082
//	idylld -coordinator -fleet-workers \
//	    w1=http://host1:8081,w2=http://host2:8082    # the front door
//
// A worker pulls results and warmup checkpoints from its peers before
// recomputing (peer cache fill); the coordinator routes jobs by rendezvous
// hashing over the spec's content address, replicates results, schedules
// tenants by weighted fair share, and serves a fleet-wide /metrics rollup.
//
// SIGTERM/SIGINT drains gracefully: submissions answer 503, queued and
// in-flight jobs finish (or are cancelled after -drain-timeout), the HTTP
// listener closes, and the process exits 0. A draining worker keeps serving
// its peer cache endpoints so the rest of the fleet can absorb its results.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"idyll/internal/fault"
	"idyll/internal/fleet"
	"idyll/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		addrFile     = flag.String("addr-file", "", "write the bound address to this file once listening")
		workers      = flag.Int("workers", 0, "concurrent jobs (0 = all cores)")
		par          = flag.Int("par", 0, "parallel-engine workers per simulation (<2 = serial engine; results identical)")
		queueDepth   = flag.Int("queue", 64, "accepted-but-not-running job backlog before shedding with 429")
		cacheEntries = flag.Int("cache-entries", 256, "in-memory result cache size")
		cacheDir     = flag.String("cache-dir", "", "persist results to this directory (empty = memory only)")
		ckptEntries  = flag.Int("ckpt-entries", 64, "in-memory warmup-checkpoint cache size")
		ckptDir      = flag.String("ckpt-dir", "", "persist warmup checkpoints to this directory (empty = memory only)")
		ttl          = flag.Duration("ttl", 15*time.Minute, "how long finished job records stay queryable")
		maxBody      = flag.Int64("max-body", 1<<20, "request body size limit in bytes")
		jobTimeout   = flag.Duration("job-timeout", 10*time.Minute, "per-job run-time cap")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits before cancelling in-flight jobs")
		quiet        = flag.Bool("quiet", false, "suppress operational logging")
		faultSpec    = flag.String("fault-spec", "", "deterministic fault-injection schedule, e.g. 'seed=7;cache.disk.read:bitflip:count=1' (empty = disabled)")

		// Fleet: worker side.
		workerMode = flag.Bool("worker", false, "run as a fleet worker (peer cache fill enabled)")
		fleetID    = flag.String("fleet-id", "", "stable fleet member name (required with -worker)")
		peers      = flag.String("peers", "", "comma-separated peer base URLs to seed peer cache fill")
		selfURL    = flag.String("self-url", "", "this worker's externally reachable base URL (default http://<bound addr>)")
		joinURL    = flag.String("join", "", "coordinator base URL to announce this worker to at startup")
		tenantMax  = flag.Int("tenant-queue-max", 0, "per-tenant queued-job cap (0 = no cap)")

		// Fleet: coordinator side.
		coordMode     = flag.Bool("coordinator", false, "run as the fleet coordinator (routes jobs to workers)")
		fleetWorkers  = flag.String("fleet-workers", "", "comma-separated id=url worker list for -coordinator")
		tenantWeights = flag.String("tenant-weights", "", "comma-separated tenant=weight fair-share weights")
		tenantQuota   = flag.Int("tenant-quota", 0, "per-tenant queued-job cap at the coordinator (0 = no cap)")
		replicas      = flag.Int("replicas", 2, "result copyset size the coordinator replicates toward")
		probeEvery    = flag.Duration("probe-interval", time.Second, "worker heartbeat cadence")
		brThreshold   = flag.Int("breaker-threshold", 1, "consecutive dispatch failures that trip a worker's circuit breaker")
		brCooldown    = flag.Duration("breaker-cooldown", 15*time.Second, "how long a tripped breaker stays open before one half-open trial dispatch")
		degradedLocal = flag.Bool("degraded-local", true, "run jobs on the coordinator itself when zero workers are routable")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "idylld: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}
	if *coordMode && *workerMode {
		fmt.Fprintln(os.Stderr, "idylld: -coordinator and -worker are mutually exclusive")
		os.Exit(2)
	}
	if *workerMode && *fleetID == "" {
		fmt.Fprintln(os.Stderr, "idylld: -worker requires -fleet-id")
		os.Exit(2)
	}

	logf := log.New(os.Stderr, "idylld: ", log.LstdFlags).Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	faults, err := fault.Parse(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "idylld:", err)
		os.Exit(2)
	}
	if faults != nil {
		logf("FAULT INJECTION ARMED: %s", faults.Schedule())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "idylld:", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := writeAddrFile(*addrFile, bound); err != nil {
			fmt.Fprintln(os.Stderr, "idylld:", err)
			os.Exit(1)
		}
	}

	// drain is invoked once on SIGTERM/SIGINT; handler serves the API.
	var handler http.Handler
	var drain func(context.Context) error

	switch {
	case *coordMode:
		addrs, err := parseFleetWorkers(*fleetWorkers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "idylld:", err)
			os.Exit(2)
		}
		weights, err := parseTenantWeights(*tenantWeights)
		if err != nil {
			fmt.Fprintln(os.Stderr, "idylld:", err)
			os.Exit(2)
		}
		fcfg := fleet.Config{
			Workers:          addrs,
			TenantWeights:    weights,
			TenantQuota:      *tenantQuota,
			QueueDepth:       *queueDepth,
			Replicas:         *replicas,
			ProbeInterval:    *probeEvery,
			CacheEntries:     *cacheEntries,
			CacheDir:         *cacheDir,
			BreakerThreshold: *brThreshold,
			BreakerCooldown:  *brCooldown,
			Faults:           faults,
			Logf:             logf,
		}
		if *degradedLocal {
			fcfg.LocalRunner = service.RunSpecPar(*par)
		}
		coord, err := fleet.NewCoordinator(fcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "idylld:", err)
			os.Exit(1)
		}
		handler = coord.Handler()
		drain = coord.Drain
		logf("coordinator listening on %s (%s, %d workers, replicas=%d)",
			bound, fleet.VersionString, len(addrs), *replicas)

	default:
		cfg := service.Config{
			Workers:        *workers,
			Par:            *par,
			QueueDepth:     *queueDepth,
			TenantQueueMax: *tenantMax,
			CacheEntries:   *cacheEntries,
			CacheDir:       *cacheDir,
			CkptEntries:    *ckptEntries,
			CkptDir:        *ckptDir,
			TTL:            *ttl,
			MaxBodyBytes:   *maxBody,
			JobTimeout:     *jobTimeout,
			Faults:         faults,
			Logf:           logf,
		}
		var filler *fleet.Filler
		if *workerMode {
			self := *selfURL
			if self == "" {
				self = "http://" + bound
			}
			filler = fleet.NewFiller(self, splitNonEmpty(*peers))
			filler.SetFaults(faults)
			cfg.PeerFill = filler.ResultFill
			cfg.CkptFill = filler.CkptFill
			cfg.OnPeers = filler.UpdatePeers
			cfg.FleetID = *fleetID
			cfg.FleetVersion = fleet.VersionString
		}
		srv, err := service.NewServer(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "idylld:", err)
			os.Exit(1)
		}
		if filler != nil {
			filler.SetMetrics(srv.Metrics())
		}
		handler = srv.Handler()
		drain = srv.Drain
		if *workerMode {
			logf("worker %s listening on %s (%s)", *fleetID, bound, fleet.VersionString)
			if *joinURL != "" {
				self := *selfURL
				if self == "" {
					self = "http://" + bound
				}
				if err := announce(*joinURL, *fleetID, self); err != nil {
					logf("join %s: %v (coordinator can still add this worker statically)", *joinURL, err)
				} else {
					logf("joined fleet at %s", *joinURL)
				}
			}
		} else {
			logf("listening on %s (workers=%d queue=%d cache=%d dir=%q)",
				bound, *workers, *queueDepth, *cacheEntries, *cacheDir)
		}
	}

	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logf("received %v, draining", sig)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "idylld:", err)
		os.Exit(1)
	}

	// Graceful drain: stop accepting jobs first (so in-flight HTTP requests
	// observe 503 rather than connection resets), let work finish, then
	// close the listener. Peer cache endpoints serve until the very end.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := drain(drainCtx); err != nil {
		logf("drain: in-flight jobs cancelled: %v", err)
	} else {
		logf("drained cleanly")
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logf("http shutdown: %v", err)
	}
	logf("exit")
}

// announce POSTs a fleet join request to the coordinator.
func announce(coordinator, id, self string) error {
	body, err := json.Marshal(fleet.JoinRequest{ID: id, URL: self, Version: fleet.VersionString})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(coordinator, "/")+"/v1/fleet/join", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("join: HTTP %d", resp.StatusCode)
	}
	return nil
}

// parseFleetWorkers decodes "w1=http://host:port,w2=..." into worker
// addresses.
func parseFleetWorkers(s string) ([]fleet.WorkerAddr, error) {
	var out []fleet.WorkerAddr
	for _, part := range splitNonEmpty(s) {
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("idylld: -fleet-workers entry %q, want id=url", part)
		}
		out = append(out, fleet.WorkerAddr{ID: id, URL: url})
	}
	return out, nil
}

// parseTenantWeights decodes "alice=3,bob=1" into fair-share weights.
func parseTenantWeights(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]float64)
	for _, part := range splitNonEmpty(s) {
		name, val, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("idylld: -tenant-weights entry %q, want tenant=weight", part)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("idylld: -tenant-weights %q: weight must be a positive number", part)
		}
		out[name] = w
	}
	return out, nil
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// writeAddrFile writes the bound address atomically so a watcher (the CI
// smoke test, a supervisor) never reads a half-written file.
func writeAddrFile(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
