// Command idylld is the simulation-as-a-service daemon: it accepts
// simulation jobs over HTTP (single cells or whole registry figures), runs
// them on a bounded worker pool, and serves results from a content-addressed
// cache — duplicate submissions dedupe onto one execution and repeat
// queries answer in microseconds.
//
// Usage:
//
//	idylld                                  # listen on :8080
//	idylld -addr 127.0.0.1:0 -addr-file a   # random port, written to file
//	idylld -cache-dir /var/cache/idyll      # persist results across restarts
//
// SIGTERM/SIGINT drains gracefully: submissions answer 503, queued and
// in-flight jobs finish (or are cancelled after -drain-timeout), the HTTP
// listener closes, and the process exits 0. See docs/API.md for the API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"idyll/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		addrFile     = flag.String("addr-file", "", "write the bound address to this file once listening")
		workers      = flag.Int("workers", 0, "concurrent jobs (0 = all cores)")
		par          = flag.Int("par", 0, "parallel-engine workers per simulation (<2 = serial engine; results identical)")
		queueDepth   = flag.Int("queue", 64, "accepted-but-not-running job backlog before shedding with 429")
		cacheEntries = flag.Int("cache-entries", 256, "in-memory result cache size")
		cacheDir     = flag.String("cache-dir", "", "persist results to this directory (empty = memory only)")
		ckptEntries  = flag.Int("ckpt-entries", 64, "in-memory warmup-checkpoint cache size")
		ckptDir      = flag.String("ckpt-dir", "", "persist warmup checkpoints to this directory (empty = memory only)")
		ttl          = flag.Duration("ttl", 15*time.Minute, "how long finished job records stay queryable")
		maxBody      = flag.Int64("max-body", 1<<20, "request body size limit in bytes")
		jobTimeout   = flag.Duration("job-timeout", 10*time.Minute, "per-job run-time cap")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits before cancelling in-flight jobs")
		quiet        = flag.Bool("quiet", false, "suppress operational logging")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "idylld: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}

	logf := log.New(os.Stderr, "idylld: ", log.LstdFlags).Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	srv, err := service.NewServer(service.Config{
		Workers:      *workers,
		Par:          *par,
		QueueDepth:   *queueDepth,
		CacheEntries: *cacheEntries,
		CacheDir:     *cacheDir,
		CkptEntries:  *ckptEntries,
		CkptDir:      *ckptDir,
		TTL:          *ttl,
		MaxBodyBytes: *maxBody,
		JobTimeout:   *jobTimeout,
		Logf:         logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "idylld:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "idylld:", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := writeAddrFile(*addrFile, bound); err != nil {
			fmt.Fprintln(os.Stderr, "idylld:", err)
			os.Exit(1)
		}
	}
	logf("listening on %s (workers=%d queue=%d cache=%d dir=%q)",
		bound, *workers, *queueDepth, *cacheEntries, *cacheDir)

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logf("received %v, draining", sig)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "idylld:", err)
		os.Exit(1)
	}

	// Graceful drain: stop accepting jobs first (so in-flight HTTP requests
	// observe 503 rather than connection resets), let work finish, then
	// close the listener.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logf("drain: in-flight jobs cancelled: %v", err)
	} else {
		logf("drained cleanly")
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logf("http shutdown: %v", err)
	}
	logf("exit")
}

// writeAddrFile writes the bound address atomically so a watcher (the CI
// smoke test, a supervisor) never reads a half-written file.
func writeAddrFile(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
