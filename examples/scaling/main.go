// Scaling: reproduce the §7.2 GPU-count study on one workload — how
// IDYLL's benefit evolves from 2 to 16 GPUs when the input dataset stays
// fixed (more GPUs ⇒ more sharing ⇒ more migrations ⇒ more invalidation
// pressure), including the narrow-directory variant with only 4 usable
// PTE bits (Figure 19's hash-collision stress).
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"idyll"
)

func main() {
	app, err := idyll.App("KM")
	if err != nil {
		log.Fatal(err)
	}
	base4 := app.PagesPerGPU * 4 // total dataset fixed at the 4-GPU size

	fmt.Println("KMeans, fixed dataset, growing GPU count")
	fmt.Printf("\n%5s %12s %12s %14s %16s\n",
		"GPUs", "migrations", "invals", "IDYLL speedup", "IDYLL m=4 bits")
	for _, gpus := range []int{2, 4, 8, 16} {
		machine := idyll.DefaultMachine()
		machine.NumGPUs = gpus
		machine.CUsPerGPU = 8
		machine.AccessCounterThreshold = 2

		w := app
		w.PagesPerGPU = base4 / gpus
		rc := idyll.RunConfig{AccessesPerCU: 400}

		base, err := idyll.Simulate(machine, idyll.Baseline(), w, rc)
		if err != nil {
			log.Fatal(err)
		}
		opt, err := idyll.Simulate(machine, idyll.IDYLL(), w, rc)
		if err != nil {
			log.Fatal(err)
		}
		narrow := idyll.IDYLL()
		narrow.UnusedBits = 4
		opt4, err := idyll.Simulate(machine, narrow, w, rc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d %12d %12d %13.2fx %15.2fx\n",
			gpus, base.Migrations, base.InvalReceived,
			opt.Speedup(base), opt4.Speedup(base))
	}

	fmt.Println(`
With more GPUs sharing the same dataset, each page has more potential
sharers, broadcasts fan out wider, and the invalidation share of walker
work grows — the regime where IDYLL's directory and IRMB matter most
(§7.2). With only 4 unused PTE bits, GPUs 4/8/12 alias GPU 0's access bit
and so on: the directory over-approximates but stays correct, and lazy
invalidation absorbs the extra requests (Figure 19).`)
}
