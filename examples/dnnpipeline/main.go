// DNN pipeline: reproduce §7.6 — layer-parallel VGG16 and ResNet18 across
// 4 GPUs, where activation buffers and shared trunk weights ping-pong
// between pipeline stages and trigger counter-based migrations. Compares
// baseline, IDYLL, and IDYLL+Trans-FW on both networks.
//
//	go run ./examples/dnnpipeline
package main

import (
	"fmt"
	"log"

	"idyll"
)

func main() {
	machine := idyll.DefaultMachine()
	machine.CUsPerGPU = 16
	machine.AccessCounterThreshold = 2
	rc := idyll.RunConfig{AccessesPerCU: 600}

	for _, name := range []string{"VGG16", "ResNet18"} {
		app, err := idyll.App(name)
		if err != nil {
			log.Fatal(err)
		}
		base, err := idyll.Simulate(machine, idyll.Baseline(), app, rc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s, layer-parallel across %d GPUs (%d layers)\n",
			app.Name, machine.NumGPUs, len(app.DNNLayers))
		fmt.Printf("  baseline: %d cycles, %d migrations, %d invalidations, %.1f%% shared accesses\n",
			base.ExecCycles, base.Migrations, base.InvalReceived,
			base.Sharing().SharedAccessRatio()*100)
		for _, s := range []idyll.Scheme{idyll.IDYLL(), idyll.IDYLLTransFW()} {
			st, err := idyll.Simulate(machine, s, app, rc)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-16s %.2fx (demand miss %.0f→%.0f cy, wait %.0f→%.0f cy)\n",
				s.Name+":", st.Speedup(base),
				base.DemandMiss.Mean(), st.DemandMiss.Mean(),
				base.MigrationWait.Mean(), st.MigrationWait.Mean())
		}
		fmt.Println()
	}

	fmt.Println(`Each pipeline stage reads the activations its predecessor wrote and the
shared trunk weights, so weight/activation pages migrate back and forth
between neighbouring GPUs — the "substantial weight sharing" the paper
identifies as the source of PTE invalidations in DNN training (§7.6).`)
}
