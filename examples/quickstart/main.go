// Quickstart: simulate PageRank on a 4-GPU system under the baseline
// (counter-based migration with broadcast invalidations) and under IDYLL,
// and report where the speedup comes from.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"idyll"
)

func main() {
	app, err := idyll.App("PR")
	if err != nil {
		log.Fatal(err)
	}

	machine := idyll.DefaultMachine()
	machine.CUsPerGPU = 16             // scale down from 64 for a quick demo
	machine.AccessCounterThreshold = 2 // trace-scaled threshold (EXPERIMENTS.md)

	rc := idyll.RunConfig{AccessesPerCU: 600, Check: true}

	base, err := idyll.Simulate(machine, idyll.Baseline(), app, rc)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := idyll.Simulate(machine, idyll.IDYLL(), app, rc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("PageRank on a 4-GPU system (%d accesses)\n\n", base.Accesses)
	fmt.Printf("%-28s %14s %14s\n", "", "Baseline", "IDYLL")
	row := func(label string, b, o float64) {
		fmt.Printf("%-28s %14.0f %14.0f\n", label, b, o)
	}
	row("execution cycles", float64(base.ExecCycles), float64(opt.ExecCycles))
	row("migrations", float64(base.Migrations), float64(opt.Migrations))
	row("invalidations received", float64(base.InvalReceived), float64(opt.InvalReceived))
	row("demand-miss latency (mean)", base.DemandMiss.Mean(), opt.DemandMiss.Mean())
	row("migration wait (mean)", base.MigrationWait.Mean(), opt.MigrationWait.Mean())
	fmt.Printf("\nIDYLL speedup: %.2fx\n", opt.Speedup(base))
	fmt.Printf("invalidations filtered by the in-PTE directory: %d\n", opt.DirectoryFiltered)
	fmt.Printf("invalidations absorbed by the IRMB: %d inserts, %d annihilated by remaps\n",
		opt.IRMBInserts, opt.IRMBInserts-opt.IRMBWritebacks)
}
