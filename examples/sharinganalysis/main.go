// Sharing analysis: reproduce the paper's §5 characterization for every
// Table 3 application — the page-sharing distribution (Figure 4), the
// walker request mix with its unnecessary-invalidation share (Figure 5),
// and the demand-miss/migration-wait penalties (Figures 6-7) — from raw
// simulator runs, without the experiment harness.
//
//	go run ./examples/sharinganalysis
package main

import (
	"fmt"
	"log"

	"idyll"
)

func main() {
	machine := idyll.DefaultMachine()
	machine.CUsPerGPU = 8
	machine.AccessCounterThreshold = 2
	rc := idyll.RunConfig{AccessesPerCU: 400}

	fmt.Println("Multi-GPU page sharing and invalidation pressure (baseline, 4 GPUs)")
	fmt.Printf("\n%-4s %-14s | %6s %6s %6s %6s | %7s %7s | %8s %8s\n",
		"app", "pattern", "1gpu%", "2gpu%", "3gpu%", "4gpu%", "inval%", "unnec%", "dm(cy)", "wait(cy)")

	for _, app := range idyll.Apps() {
		st, err := idyll.Simulate(machine, idyll.Baseline(), app, rc)
		if err != nil {
			log.Fatal(err)
		}
		dist := st.Sharing().AccessDistribution(machine.NumGPUs)
		total := float64(st.WalkerDemand + st.WalkerInval + st.WalkerUpdate)
		invalShare := float64(st.WalkerInval) / total * 100
		fmt.Printf("%-4s %-14s | %5.1f%% %5.1f%% %5.1f%% %5.1f%% | %6.1f%% %6.1f%% | %8.0f %8.0f\n",
			app.Abbr, app.Pattern,
			dist[1]*100, dist[2]*100, dist[3]*100, dist[4]*100,
			invalShare, st.UnnecessaryInvalFraction()*100,
			st.DemandMiss.Mean(), st.MigrationWait.Mean())
	}

	fmt.Println(`
Columns:
  kgpu%   fraction of accesses to pages touched by exactly k GPUs (Fig 4)
  inval%  PTE-invalidation share of all page-walker requests (Fig 5)
  unnec%  invalidation walks that found no valid PTE (Fig 5)
  dm      mean demand TLB-miss latency (Fig 6 baseline)
  wait    mean page-migration waiting latency (Fig 7)

Apps with global sharing (MM, PR, KM) concentrate accesses on pages shared
by all four GPUs; transpose/exchange apps (MT, C2D, BS) on pairwise pages;
stencils (ST, SC) on neighbour halos — the structure that decides how many
invalidations each migration must broadcast.`)
}
