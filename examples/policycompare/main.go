// Policy comparison: reproduce the §3.3 / Figure 2 design space on one
// stencil workload — first-touch, on-touch, counter-based migration, page
// replication, and the zero-latency-invalidation ideal — and show *why*
// each wins or loses (remote access share vs migration churn vs
// invalidation cost).
//
//	go run ./examples/policycompare
package main

import (
	"fmt"
	"log"

	"idyll"
)

func main() {
	app, err := idyll.App("ST") // Stencil 2D: neighbour halo sharing
	if err != nil {
		log.Fatal(err)
	}
	machine := idyll.DefaultMachine()
	machine.CUsPerGPU = 16
	machine.AccessCounterThreshold = 2
	rc := idyll.RunConfig{AccessesPerCU: 600}

	schemes := []idyll.Scheme{
		idyll.FirstTouch(),
		idyll.OnTouch(),
		idyll.Baseline(), // access counter-based
		idyll.Replication(),
		idyll.ZeroLatency(),
		idyll.IDYLL(),
	}

	base, err := idyll.Simulate(machine, idyll.Baseline(), app, rc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Stencil 2D: migration-policy design space (4 GPUs)")
	fmt.Printf("\n%-26s %8s %9s %10s %9s %11s\n",
		"policy", "speedup", "remote%", "migrations", "invals", "mean dm cy")
	for _, s := range schemes {
		st, err := idyll.Simulate(machine, s, app, rc)
		if err != nil {
			log.Fatal(err)
		}
		remote := float64(st.RemoteAccesses) / float64(st.RemoteAccesses+st.LocalAccesses) * 100
		fmt.Printf("%-26s %7.2fx %8.1f%% %10d %9d %11.0f\n",
			s.Name, st.Speedup(base), remote, st.Migrations, st.InvalReceived,
			st.DemandMiss.Mean())
	}

	fmt.Println(`
Reading the table (cf. paper §2, Figure 2):
  - first-touch never migrates: no invalidations, but every shared access
    stays remote (in the paper's full-length runs that remote tax loses;
    at this compressed trace scale avoiding migration wins — see
    EXPERIMENTS.md "Known deviations");
  - on-touch migrates on every fault and pays constant invalidation rounds;
  - counter-based migration is the A100 baseline IDYLL builds on;
  - replication serves shared reads locally but collapses on writes;
  - zero-latency invalidation bounds what removing the invalidation cost
    can buy — and IDYLL approaches (or beats) it by also bypassing local
    walks for IRMB-hit demand misses.`)
}
