module idyll

go 1.22
