#!/usr/bin/env bash
# vet.sh — run every static check CI runs, the same way CI runs it:
#
#   scripts/vet.sh            # gofmt + go vet + idyllvet + analyzer tests
#
# go vet runs over ./... (which covers cmd/... and internal/profiling) and
# then explicitly over the paths that historically risk being skipped when
# patterns change, so a future narrowing of the main pattern cannot
# silently drop them. No build-tagged files exist in this repository, so
# the default tag set is the only combination CI needs; if tags are ever
# introduced, add the matching `go vet -tags` lines here and in ci.yml.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== go vet ./cmd/... ./internal/profiling (explicit, anti-skip) =="
go vet ./cmd/... ./internal/profiling

# idyllvet covers internal/sim/pdes like the rest of the deterministic
# core; only the straygoroutine check exempts it (analysis.ConcurrencyBoundary
# — the one package allowed to own goroutines, with golden-file tests in the
# analyzer suite pinning the boundary).
echo "== idyllvet (determinism contract) =="
go run ./cmd/idyllvet ./...

echo "== analyzer test suite =="
go test ./internal/analysis/...

echo "vet.sh: all checks passed"
