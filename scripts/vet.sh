#!/usr/bin/env bash
# vet.sh — run every static check CI runs, the same way CI runs it:
#
#   scripts/vet.sh            # gofmt + go vet + idyllvet + analyzer tests
#
# go vet runs over ./... (which covers cmd/... and internal/profiling) and
# then explicitly over the paths that historically risk being skipped when
# patterns change, so a future narrowing of the main pattern cannot
# silently drop them. No build-tagged files exist in this repository, so
# the default tag set is the only combination CI needs; if tags are ever
# introduced, add the matching `go vet -tags` lines here and in ci.yml.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== go vet ./cmd/... ./internal/profiling (explicit, anti-skip) =="
go vet ./cmd/... ./internal/profiling

# idyllvet covers internal/sim/pdes like the rest of the deterministic
# core; only the straygoroutine check exempts it (analysis.ConcurrencyBoundary
# — the one package allowed to own goroutines, with golden-file tests in the
# analyzer suite pinning the boundary). -counts prints the per-check finding
# tally so a clean run still shows what was actually checked.
echo "== idyllvet (determinism + service-layer contracts) =="
go run ./cmd/idyllvet -counts ./...

# The committed baseline must be a fixed point of -write-baseline: if
# regenerating it changes the file, either a fixed finding is still
# grandfathered or a new finding was baselined without review. CI runs the
# same gate in the idyllvet-pass job.
echo "== idyllvet baseline freshness =="
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
cp .idyllvet-baseline "$tmp"
go run ./cmd/idyllvet -write-baseline ./... >/dev/null
if ! diff -u "$tmp" .idyllvet-baseline; then
    echo "idyllvet baseline is stale: commit the regenerated .idyllvet-baseline" >&2
    exit 1
fi

echo "== analyzer test suite =="
go test ./internal/analysis/...

echo "vet.sh: all checks passed"
