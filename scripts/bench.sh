#!/usr/bin/env bash
# bench.sh — run the perf-tracked benchmark set and gate/record results.
#
#   scripts/bench.sh run [count]       # run benchmarks, print + save output
#   scripts/bench.sh check [count]     # run, then gate allocs/op + B/op
#                                      # against BENCH_PR7.json (wall-clock is
#                                      # machine-dependent, so it is NOT gated
#                                      # against the committed baseline)
#   scripts/bench.sh record [count]    # run count>=3 times, rewrite
#                                      # BENCH_PR7.json from the per-benchmark
#                                      # MINIMUM (noise only ever adds time)
#   scripts/bench.sh compare OLD NEW   # diff two saved bench outputs
#                                      # (10% ns/op + allocs/op thresholds,
#                                      # plus a geomean summary row)
#
# The tracked set is the micro-benchmarks plus the end-to-end throughput
# benchmarks on both event engines (BenchmarkSuiteFig11Serial vs
# BenchmarkSuiteFig11PDES8 is the parallel core's single-simulation speedup)
# and on the warmup-checkpoint path (BenchmarkSuiteFig11Warmup vs
# BenchmarkSuiteFig11Checkpointed is the warmup-sharing speedup); see
# BENCH_PR7.json for the committed baseline and DESIGN.md "Engine internals &
# profiling" / "Checkpoint format & forking" for how these numbers are used.
set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN='^(BenchmarkEventEngine|BenchmarkIRMBInsertLookup|BenchmarkZipfSampling|BenchmarkSimulatePageRank|BenchmarkSuiteFig11Serial|BenchmarkSuiteFig11PDES8|BenchmarkSuiteFig11Warmup|BenchmarkSuiteFig11Checkpointed)$'
BASELINE=BENCH_PR7.json
OUT=${BENCH_OUT:-/tmp/idyll_bench.txt}

run_bench() {
    local count=${1:-5}
    # -count gives benchdiff repeated runs to collapse (median when
    # comparing, minimum when recording), which is what makes the wall-clock
    # numbers usable on shared machines.
    go test -run '^$' -bench "$PATTERN" -benchmem -count "$count" . | tee "$OUT"
}

case "${1:-run}" in
run)
    run_bench "${2:-5}"
    echo "saved to $OUT"
    ;;
check)
    run_bench "${2:-5}"
    echo
    echo "== gate: allocs/op + B/op vs $BASELINE =="
    go run ./cmd/benchdiff -time -1 -bytes 0.10 -require "$BASELINE" "$OUT"
    ;;
record)
    # A baseline must come from repeated runs: a single sample can freeze a
    # scheduling hiccup into the committed numbers. The PR6 baseline recorded
    # BenchmarkSuiteFig11PDES8 "slower" than Serial exactly this way — noise
    # from a low-core shared runner, not a PDES regression. Collapsing >= 3
    # runs to the per-benchmark minimum keeps that regime out of baselines:
    # interference only ever adds time, so the minimum is the cleanest
    # estimate a shared machine can give.
    count=${2:-5}
    if [ "$count" -lt 3 ]; then
        echo "record: need count >= 3 (got $count) — fewer runs bake scheduler noise into the baseline" >&2
        exit 2
    fi
    run_bench "$count"
    go run ./cmd/benchdiff -min \
        -note "recorded by scripts/bench.sh record: per-benchmark minimum of $count runs. Allocation counts are deterministic and CI-gated; ns/op is machine-specific context only — judge wall-clock with same-machine back-to-back runs (benchdiff -fail-over), never against this file. Caveat carried from BENCH_PR6.json: it showed SuiteFig11PDES8 slower than Serial, an artifact of single-sample recording on a low-core runner (PDES worker overhead with no spare cores), which the minimum-of-N collapse now prevents." \
        -emit "$BASELINE" "$OUT"
    ;;
compare)
    [ $# -eq 3 ] || { echo "usage: $0 compare OLD NEW" >&2; exit 2; }
    go run ./cmd/benchdiff "$2" "$3"
    ;;
*)
    echo "usage: $0 {run|check|record|compare} ..." >&2
    exit 2
    ;;
esac
