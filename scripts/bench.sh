#!/usr/bin/env bash
# bench.sh — run the perf-tracked benchmark set and gate/record results.
#
#   scripts/bench.sh run [count]       # run benchmarks, print + save output
#   scripts/bench.sh check [count]     # run, then gate allocs/op + B/op
#                                      # against BENCH_PR6.json (wall-clock is
#                                      # machine-dependent, so it is NOT gated
#                                      # against the committed baseline)
#   scripts/bench.sh record [count]    # run, then rewrite BENCH_PR6.json
#   scripts/bench.sh compare OLD NEW   # diff two saved bench outputs
#                                      # (10% ns/op + allocs/op thresholds)
#
# The tracked set is the micro-benchmarks plus the end-to-end throughput
# benchmarks on both event engines (BenchmarkSuiteFig11Serial vs
# BenchmarkSuiteFig11PDES8 is the parallel core's single-simulation speedup);
# see BENCH_PR6.json for the committed baseline and DESIGN.md "Engine
# internals & profiling" for how these numbers are used.
set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN='^(BenchmarkEventEngine|BenchmarkIRMBInsertLookup|BenchmarkZipfSampling|BenchmarkSimulatePageRank|BenchmarkSuiteFig11Serial|BenchmarkSuiteFig11PDES8)$'
BASELINE=BENCH_PR6.json
OUT=${BENCH_OUT:-/tmp/idyll_bench.txt}

run_bench() {
    local count=${1:-5}
    # -count gives benchdiff a median to collapse, which is what makes the
    # wall-clock numbers usable on shared machines.
    go test -run '^$' -bench "$PATTERN" -benchmem -count "$count" . | tee "$OUT"
}

case "${1:-run}" in
run)
    run_bench "${2:-5}"
    echo "saved to $OUT"
    ;;
check)
    run_bench "${2:-5}"
    echo
    echo "== gate: allocs/op + B/op vs $BASELINE =="
    go run ./cmd/benchdiff -time -1 -bytes 0.10 -require "$BASELINE" "$OUT"
    ;;
record)
    run_bench "${2:-5}"
    go run ./cmd/benchdiff -emit "$BASELINE" "$OUT"
    ;;
compare)
    [ $# -eq 3 ] || { echo "usage: $0 compare OLD NEW" >&2; exit 2; }
    go run ./cmd/benchdiff "$2" "$3"
    ;;
*)
    echo "usage: $0 {run|check|record|compare} ..." >&2
    exit 2
    ;;
esac
